package mitigation

import (
	"math"
	"reflect"
	"testing"

	"catsim/internal/core"
	"catsim/internal/rng"
)

// Interface conformance.
var (
	_ Scheme = (*None)(nil)
	_ Scheme = (*SCA)(nil)
	_ Scheme = (*PRA)(nil)
	_ Scheme = (*CAT)(nil)
	_ Scheme = (*CounterCache)(nil)
)

func uniformStream(seed uint64, banks, rows, n int) [][2]int {
	src := rng.NewXoshiro256(seed)
	out := make([][2]int, n)
	for i := range out {
		out[i] = [2]int{rng.Intn(src, banks), rng.Intn(src, rows)}
	}
	return out
}

func hammerStream(banks, rows, n int, targets []int) [][2]int {
	out := make([][2]int, n)
	for i := range out {
		out[i] = [2]int{i % banks, targets[i%len(targets)]}
	}
	return out
}

func TestSCARefreshCoversGroupPlusNeighbours(t *testing.T) {
	s, err := NewSCA(1, 1024, 8, 10)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "SCA_8" || s.Kind() != KindSCA || s.CountersPerBank() != 8 {
		t.Errorf("metadata wrong: %s %v %d", s.Name(), s.Kind(), s.CountersPerBank())
	}
	// Group size 128; row 300 is in group 2 (rows 256..383).
	var got []RefreshRange
	for i := 0; i < 10; i++ {
		got = s.OnActivate(0, 300)
	}
	if len(got) != 1 {
		t.Fatalf("expected refresh on 10th access, got %v", got)
	}
	if got[0].Lo != 255 || got[0].Hi != 384 {
		t.Errorf("range [%d,%d], want [255,384]", got[0].Lo, got[0].Hi)
	}
	c := s.Counts()
	if c.RefreshEvents != 1 || c.RowsRefreshed != 130 || c.Activations != 10 {
		t.Errorf("counts = %+v", c)
	}
	if c.SRAMAccesses != 20 {
		t.Errorf("SRAMAccesses = %d, want 2 per activation", c.SRAMAccesses)
	}
}

func TestSCAEdgeGroupsClamped(t *testing.T) {
	s, err := NewSCA(1, 1024, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	var got []RefreshRange
	for i := 0; i < 3; i++ {
		got = s.OnActivate(0, 0)
	}
	if len(got) != 1 || got[0].Lo != 0 || got[0].Hi != 128 {
		t.Errorf("edge group range = %v, want [0,128]", got)
	}
}

func TestSCAIntervalResetsCounters(t *testing.T) {
	s, _ := NewSCA(2, 256, 4, 5)
	for i := 0; i < 4; i++ {
		s.OnActivate(1, 10)
	}
	s.OnIntervalBoundary()
	// Four more accesses must not trigger (counter restarted).
	for i := 0; i < 4; i++ {
		if got := s.OnActivate(1, 10); got != nil {
			t.Fatal("refresh fired despite interval reset")
		}
	}
}

func TestSCAValidation(t *testing.T) {
	cases := []struct {
		banks, rows, m int
		th             uint32
	}{
		{0, 256, 4, 5}, {1, 0, 4, 5}, {1, 256, 0, 5}, {1, 256, 3, 5},
		{1, 256, 512, 5}, {1, 256, 4, 0},
	}
	for i, c := range cases {
		if _, err := NewSCA(c.banks, c.rows, c.m, c.th); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestPRARefreshRateMatchesProbability(t *testing.T) {
	const p = 0.01
	pr, err := NewPRA(1<<16, p, rng.NewXoshiro256(77))
	if err != nil {
		t.Fatal(err)
	}
	const n = 200000
	for i := 0; i < n; i++ {
		pr.OnActivate(0, 5000)
	}
	c := pr.Counts()
	rate := float64(c.RefreshEvents) / n
	if math.Abs(rate-p) > p/5 {
		t.Errorf("refresh rate %v, want about %v", rate, p)
	}
	if c.PRNGBits != 9*n {
		t.Errorf("PRNGBits = %d, want %d", c.PRNGBits, 9*n)
	}
	// Two victims per refresh away from bank edges.
	if c.RowsRefreshed != 2*c.RefreshEvents {
		t.Errorf("RowsRefreshed = %d, want %d", c.RowsRefreshed, 2*c.RefreshEvents)
	}
}

func TestPRAEdgeRowRefreshesSingleVictim(t *testing.T) {
	pr, _ := NewPRA(128, 0.999, rng.NewXoshiro256(1))
	got := pr.OnActivate(0, 0)
	if len(got) != 1 || got[0].Lo != 1 {
		t.Errorf("edge activation ranges = %v, want just row 1", got)
	}
	got = pr.OnActivate(0, 127)
	if len(got) != 1 || got[0].Lo != 126 {
		t.Errorf("edge activation ranges = %v, want just row 126", got)
	}
}

func TestPRANeverRefreshesAggressor(t *testing.T) {
	pr, _ := NewPRA(1024, 0.9, rng.NewXoshiro256(2))
	for i := 0; i < 1000; i++ {
		for _, rr := range pr.OnActivate(0, 500) {
			if rr.Lo <= 500 && 500 <= rr.Hi {
				t.Fatal("PRA refreshed the aggressor row")
			}
		}
	}
}

func TestPRAProbabilityForThreshold(t *testing.T) {
	cases := map[uint32]float64{65536: 0.001, 32768: 0.002, 16384: 0.003, 8192: 0.005}
	for th, want := range cases {
		if got := PRAProbabilityForThreshold(th); got != want {
			t.Errorf("T=%d: p=%v, want %v", th, got, want)
		}
	}
}

func TestPRAValidation(t *testing.T) {
	if _, err := NewPRA(0, 0.01, rng.NewSplitMix64(1)); err == nil {
		t.Error("expected rows error")
	}
	if _, err := NewPRA(16, 0, rng.NewSplitMix64(1)); err == nil {
		t.Error("expected probability error")
	}
	if _, err := NewPRA(16, 1.5, rng.NewSplitMix64(1)); err == nil {
		t.Error("expected probability error")
	}
	if _, err := NewPRA(16, 0.5, nil); err == nil {
		t.Error("expected source error")
	}
}

func newTestCAT(t *testing.T, banks int, policy core.Policy) *CAT {
	t.Helper()
	c, err := NewCAT(banks, core.Config{
		Rows: 1 << 10, Counters: 16, MaxLevels: 8,
		RefreshThreshold: 64, Policy: policy,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCATNamesAndKinds(t *testing.T) {
	pr := newTestCAT(t, 2, core.PRCAT)
	dr := newTestCAT(t, 2, core.DRCAT)
	if pr.Name() != "PRCAT_16" || pr.Kind() != KindPRCAT {
		t.Errorf("PRCAT metadata: %s %v", pr.Name(), pr.Kind())
	}
	if dr.Name() != "DRCAT_16" || dr.Kind() != KindDRCAT {
		t.Errorf("DRCAT metadata: %s %v", dr.Name(), dr.Kind())
	}
	if pr.CountersPerBank() != 16 {
		t.Errorf("CountersPerBank = %d", pr.CountersPerBank())
	}
}

func TestCATBanksAreIndependent(t *testing.T) {
	c := newTestCAT(t, 2, core.PRCAT)
	// Hammer bank 0 only; bank 1's tree must stay in pre-split shape.
	for i := 0; i < 4096; i++ {
		c.OnActivate(0, 5)
	}
	if c.Tree(0).Stats().Accesses != 4096 {
		t.Error("bank 0 did not receive the traffic")
	}
	if c.Tree(1).Stats().Accesses != 0 {
		t.Error("bank 1 received unexpected traffic")
	}
}

func TestDeterministicSchemesAreSound(t *testing.T) {
	// Every deterministic scheme must drive the oracle with zero
	// violations, under uniform traffic and under hammering.
	const banks, rows = 2, 1 << 10
	const threshold = 64
	build := func(name string) Scheme {
		switch name {
		case "sca":
			s, _ := NewSCA(banks, rows, 16, threshold)
			return s
		case "prcat":
			c, _ := NewCAT(banks, core.Config{Rows: rows, Counters: 16,
				MaxLevels: 8, RefreshThreshold: threshold, Policy: core.PRCAT})
			return c
		case "drcat":
			c, _ := NewCAT(banks, core.Config{Rows: rows, Counters: 16,
				MaxLevels: 8, RefreshThreshold: threshold, Policy: core.DRCAT})
			return c
		case "cc":
			cc, _ := NewCounterCache(banks, rows, threshold, 64, 4)
			return cc
		}
		return nil
	}
	streams := map[string][][2]int{
		"uniform":      uniformStream(9, banks, rows, 1<<15),
		"single":       hammerStream(banks, rows, 1<<15, []int{777}),
		"double-sided": hammerStream(banks, rows, 1<<15, []int{500, 502}),
		"quad":         hammerStream(banks, rows, 1<<15, []int{64, 300, 800, 1000}),
	}
	for _, name := range []string{"sca", "prcat", "drcat", "cc"} {
		for sname, stream := range streams {
			s := build(name)
			o := NewOracle(banks, rows, threshold)
			if v := o.Drive(s, stream, 1<<13); v != 0 {
				t.Errorf("%s under %s: %d protection violations", s.Name(), sname, v)
			}
		}
	}
}

// brokenSCA deliberately omits the adjacent-row refresh to prove the oracle
// catches unsound schemes (failure injection).
type brokenSCA struct{ *SCA }

func (b brokenSCA) OnActivate(bank, row int) []RefreshRange {
	ranges := b.SCA.OnActivate(bank, row)
	if len(ranges) == 1 {
		// Refresh the group only, not the neighbours: rows adjacent to the
		// group boundary stay exposed to aggressors inside the group.
		ranges[0].Lo++
		ranges[0].Hi--
	}
	return ranges
}

func TestOracleCatchesBrokenScheme(t *testing.T) {
	s, _ := NewSCA(1, 1024, 8, 16)
	o := NewOracle(1, 1024, 16)
	// Hammer the last row of group 2 (row 383): its victim 384 lives in
	// group 3 and is only protected by the neighbour refresh we broke.
	v := o.Drive(brokenSCA{s}, hammerStream(1, 1024, 1<<13, []int{383}), 0)
	if v == 0 {
		t.Fatal("oracle failed to flag the broken scheme")
	}
}

func TestCounterCacheExactVictims(t *testing.T) {
	cc, err := NewCounterCache(1, 1024, 8, 64, 4)
	if err != nil {
		t.Fatal(err)
	}
	var got []RefreshRange
	for i := 0; i < 8; i++ {
		got = cc.OnActivate(0, 500)
	}
	if len(got) != 2 || got[0].Lo != 499 || got[1].Lo != 501 {
		t.Errorf("victims = %v, want rows 499 and 501", got)
	}
	c := cc.Counts()
	if c.RowsRefreshed != 2 {
		t.Errorf("RowsRefreshed = %d, want 2 (exact victims)", c.RowsRefreshed)
	}
	// First access missed (cold), the rest hit.
	if c.ExtraMemAcc != 1 {
		t.Errorf("ExtraMemAcc = %d, want 1 cold miss", c.ExtraMemAcc)
	}
}

func TestCounterCacheThrashingCostsMemoryTraffic(t *testing.T) {
	cc, _ := NewCounterCache(1, 1<<16, 1<<16, 64, 4)
	src := rng.NewXoshiro256(4)
	const n = 20000
	for i := 0; i < n; i++ {
		cc.OnActivate(0, rng.Intn(src, 1<<16))
	}
	c := cc.Counts()
	// With 64 entries against 64K rows, almost every access misses.
	if c.ExtraMemAcc < n/2 {
		t.Errorf("ExtraMemAcc = %d, want heavy thrashing (> %d)", c.ExtraMemAcc, n/2)
	}
}

func TestCounterCacheEvictionPreservesExactCounts(t *testing.T) {
	// Evicted counters must survive in the backing store: hammer a row,
	// evict it by touching many conflicting rows, then resume hammering —
	// the refresh must still fire after exactly T total activations.
	const threshold = 100
	cc, _ := NewCounterCache(1, 1<<12, threshold, 16, 1) // direct-mapped, 16 sets
	hot := 5
	for i := 0; i < 50; i++ {
		cc.OnActivate(0, hot)
	}
	// Conflict: same set (row % 16 == 5), different rows.
	for i := 1; i <= 4; i++ {
		cc.OnActivate(0, hot+16*i)
	}
	fired := false
	for i := 0; i < 50; i++ {
		if got := cc.OnActivate(0, hot); len(got) > 0 {
			fired = true
			if i != 49 {
				t.Errorf("refresh after %d resumed accesses, want 50 (exact count)", i+1)
			}
		}
	}
	if !fired {
		t.Error("refresh never fired; eviction lost the count")
	}
}

func TestCATEquivalentToSCAWhenFullyPreSplit(t *testing.T) {
	// A CAT pre-split to λ = log2(M)+1 levels with a uniform ladder is
	// exactly SCA_M; both must issue identical refreshes on any stream.
	const banks, rows, m, threshold = 2, 1 << 10, 8, 32
	cat, err := NewCAT(banks, core.Config{
		Rows: rows, Counters: m, MaxLevels: 4, PreSplit: 4,
		RefreshThreshold: threshold, Ladder: core.UniformLadder(4, threshold),
	})
	if err != nil {
		t.Fatal(err)
	}
	sca, err := NewSCA(banks, rows, m, threshold)
	if err != nil {
		t.Fatal(err)
	}
	stream := uniformStream(31, banks, rows, 1<<15)
	for _, br := range stream {
		a := cat.OnActivate(br[0], br[1])
		b := sca.OnActivate(br[0], br[1])
		if len(a) != len(b) {
			t.Fatalf("refresh decision diverged: CAT %v, SCA %v", a, b)
		}
		if len(a) == 1 && a[0] != b[0] {
			t.Fatalf("refresh ranges diverged: CAT %v, SCA %v", a[0], b[0])
		}
	}
	ca, cb := cat.Counts(), sca.Counts()
	if ca.RefreshEvents != cb.RefreshEvents || ca.RowsRefreshed != cb.RowsRefreshed {
		t.Errorf("counts diverged: CAT %+v, SCA %+v", ca, cb)
	}
}

func TestNoneSchemeCountsActivationsOnly(t *testing.T) {
	n := NewNone()
	for i := 0; i < 10; i++ {
		if got := n.OnActivate(0, i); got != nil {
			t.Fatal("None must never refresh")
		}
	}
	if c := n.Counts(); c.Activations != 10 || c.RowsRefreshed != 0 {
		t.Errorf("counts = %+v", c)
	}
}

// TestCountsSubCoversEveryField guards the hand-enumerated delta exactly
// like memctrl's Stats test: no Counts field may be missing from Sub.
func TestCountsSubCoversEveryField(t *testing.T) {
	var c Counts
	v := reflect.ValueOf(&c).Elem()
	for i := 0; i < v.NumField(); i++ {
		v.Field(i).SetInt(int64(i + 1))
	}
	if got := c.Sub(Counts{}); got != c {
		t.Errorf("Sub(zero) = %+v, want %+v — a field is missing from Sub", got, c)
	}
}
