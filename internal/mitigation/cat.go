package mitigation

import (
	"fmt"

	"catsim/internal/core"
)

// CAT adapts internal/core's adaptive counter trees (one per bank) to the
// Scheme interface. Policy PRCAT rebuilds each tree every interval; DRCAT
// keeps the learned shape and reconfigures dynamically (paper §V).
//
// The per-bank trees are core.FlatTree — the contiguous implicit-heap
// layout — because OnActivate is the simulator's per-request hot path.
// core.Tree (the pointer-linked SRAM mirror of the paper's Fig. 5) remains
// the reference implementation; the two are observationally identical,
// locked by the differential tests in internal/core.
type CAT struct {
	name    string
	kind    Kind
	trees   []*core.FlatTree
	scratch []RefreshRange
}

// NewCAT builds one tree per bank from cfg. The per-bank config must carry
// the rows of one bank in cfg.Rows.
func NewCAT(banks int, cfg core.Config) (*CAT, error) {
	if banks < 1 {
		return nil, fmt.Errorf("mitigation: need at least one bank")
	}
	kind := KindPRCAT
	if cfg.Policy == core.DRCAT {
		kind = KindDRCAT
	}
	c := &CAT{
		name:    fmt.Sprintf("%s_%d", cfg.Policy, cfg.Counters),
		kind:    kind,
		trees:   make([]*core.FlatTree, banks),
		scratch: make([]RefreshRange, 0, 1),
	}
	for b := range c.trees {
		t, err := core.NewFlatTree(cfg)
		if err != nil {
			return nil, err
		}
		c.trees[b] = t
	}
	return c, nil
}

// Name implements Scheme.
func (c *CAT) Name() string { return c.name }

// Kind implements Scheme.
func (c *CAT) Kind() Kind { return c.kind }

// CountersPerBank implements Scheme.
func (c *CAT) CountersPerBank() int { return c.trees[0].Config().Counters }

// Tree exposes the per-bank tree for diagnostics and examples.
func (c *CAT) Tree(bank int) *core.FlatTree { return c.trees[bank] }

// OnActivate implements Scheme.
func (c *CAT) OnActivate(bank, row int) []RefreshRange {
	lo, hi, refresh := c.trees[bank].Access(row)
	if !refresh {
		return nil
	}
	c.scratch = c.scratch[:0]
	c.scratch = append(c.scratch, RefreshRange{Lo: lo, Hi: hi})
	return c.scratch
}

// OnIntervalBoundary implements Scheme.
func (c *CAT) OnIntervalBoundary() {
	for _, t := range c.trees {
		t.OnIntervalBoundary()
	}
}

// Counts implements Scheme.
func (c *CAT) Counts() Counts {
	var total Counts
	for _, t := range c.trees {
		s := t.Stats()
		total.Activations += s.Accesses
		total.RefreshEvents += s.RefreshEvents
		total.RowsRefreshed += s.RowsRefreshed
		total.SRAMAccesses += s.SRAMAccesses
	}
	return total
}

// ResetRun implements Resettable: every bank's tree returns to the
// uniform pre-split shape with zeroed statistics (CAT draws no
// randomness; Counts derive from the tree stats, so nothing else resets).
func (c *CAT) ResetRun(uint64) bool {
	for _, t := range c.trees {
		t.Reset()
	}
	return true
}

// Snapshot implements Snapshotter: active counters and the deepest leaf
// across every bank's tree, plus DRCAT's cumulative reconfigurations —
// the occupancy trajectory the figt time-series study plots.
func (c *CAT) Snapshot() Snapshot {
	s := Snapshot{Cap: len(c.trees) * c.trees[0].Config().Counters}
	for _, t := range c.trees {
		s.Live += t.ActiveCounters()
		st := t.Stats()
		s.Reconfigs += st.Reconfigs
		if st.MaxDepth > s.Depth {
			s.Depth = st.MaxDepth
		}
	}
	return s
}

// MaxTreeDepth returns the deepest leaf observed across banks.
func (c *CAT) MaxTreeDepth() int {
	max := 0
	for _, t := range c.trees {
		if d := t.Stats().MaxDepth; d > max {
			max = d
		}
	}
	return max
}

// catBuilder adapts NewCAT to the spec registry for one tree policy.
func catBuilder(policy core.Policy) Builder {
	return Builder{
		ShardSafe: true, // one FlatTree per bank, no shared state
		Params: []ParamDef{
			{Name: "counters", Doc: "tree counters per bank M"},
			{Name: "levels", Doc: "maximum tree levels L (default 11)"},
			{Name: "weightbits", Doc: "DRCAT weight-register width (default 2)"},
			{Name: "presplit", Doc: "pre-split depth lambda (default log2 M)"},
		},
		Build: func(spec SchemeSpec, banks, rowsPerBank int) (Scheme, error) {
			m, err := spec.Params.Int("counters", 0)
			if err != nil {
				return nil, err
			}
			levels, err := spec.Params.Int("levels", 11)
			if err != nil {
				return nil, err
			}
			weightBits, err := spec.Params.Int("weightbits", 0)
			if err != nil {
				return nil, err
			}
			preSplit, err := spec.Params.Int("presplit", 0)
			if err != nil {
				return nil, err
			}
			return NewCAT(banks, core.Config{
				Rows:             rowsPerBank,
				Counters:         m,
				MaxLevels:        levels,
				RefreshThreshold: spec.Threshold,
				Policy:           policy,
				WeightBits:       weightBits,
				PreSplit:         preSplit,
			})
		},
	}
}

func init() {
	Register(KindPRCAT, catBuilder(core.PRCAT))
	Register(KindDRCAT, catBuilder(core.DRCAT))
}
