package mitigation

import "fmt"

// SCA implements Static Counter Assignment (paper §III-B): the N rows of
// each bank are divided into M fixed groups of N/M rows, each governed by
// one counter. When a group counter reaches the refresh threshold T, it is
// reset and the N/M rows of the group plus the two rows adjacent to the
// group are refreshed, "which guarantees the refresh of any row in or
// adjacent to the group subjected to the crosstalk".
type SCA struct {
	name      string
	banks     int
	rows      int
	m         int
	groupSize int
	threshold uint32
	counters  [][]uint32
	counts    Counts
	scratch   []RefreshRange
}

// NewSCA builds an SCA instance with m counters per bank.
func NewSCA(banks, rowsPerBank, m int, threshold uint32) (*SCA, error) {
	if banks < 1 || rowsPerBank < 1 {
		return nil, fmt.Errorf("mitigation: need at least one bank and row")
	}
	if m < 1 || m > rowsPerBank || rowsPerBank%m != 0 {
		return nil, fmt.Errorf("mitigation: SCA counters %d must evenly divide %d rows", m, rowsPerBank)
	}
	if threshold < 1 {
		return nil, fmt.Errorf("mitigation: threshold must be positive")
	}
	s := &SCA{
		name:      fmt.Sprintf("SCA_%d", m),
		banks:     banks,
		rows:      rowsPerBank,
		m:         m,
		groupSize: rowsPerBank / m,
		threshold: threshold,
		counters:  make([][]uint32, banks),
		scratch:   make([]RefreshRange, 0, 1),
	}
	for b := range s.counters {
		s.counters[b] = make([]uint32, m)
	}
	return s, nil
}

// Name implements Scheme.
func (s *SCA) Name() string { return s.name }

// Kind implements Scheme.
func (s *SCA) Kind() Kind { return KindSCA }

// CountersPerBank implements Scheme.
func (s *SCA) CountersPerBank() int { return s.m }

// OnActivate implements Scheme.
func (s *SCA) OnActivate(bank, row int) []RefreshRange {
	s.counts.Activations++
	// "SRAM is accessed only twice to read and write the counters."
	s.counts.SRAMAccesses += 2
	c := &s.counters[bank][row/s.groupSize]
	*c++
	if *c < s.threshold {
		return nil
	}
	*c = 0
	g := row / s.groupSize
	rr := clampRange(g*s.groupSize-1, (g+1)*s.groupSize, s.rows)
	s.counts.RefreshEvents++
	s.counts.RowsRefreshed += int64(rr.Rows())
	s.scratch = s.scratch[:0]
	s.scratch = append(s.scratch, rr)
	return s.scratch
}

// OnIntervalBoundary implements Scheme: counters reset with the regular
// refresh of all rows.
func (s *SCA) OnIntervalBoundary() {
	for b := range s.counters {
		for i := range s.counters[b] {
			s.counters[b][i] = 0
		}
	}
}

// Counts implements Scheme.
func (s *SCA) Counts() Counts { return s.counts }

// ResetRun implements Resettable: zeroed group counters are the full
// just-built state (SCA draws no randomness).
func (s *SCA) ResetRun(uint64) bool {
	s.OnIntervalBoundary()
	s.counts = Counts{}
	return true
}

// Snapshot implements Snapshotter: nonzero group counters across banks —
// how much of the static assignment the traffic actually touches.
func (s *SCA) Snapshot() Snapshot {
	snap := Snapshot{Cap: s.banks * s.m}
	for b := range s.counters {
		for _, c := range s.counters[b] {
			if c != 0 {
				snap.Live++
			}
		}
	}
	return snap
}

func init() {
	Register(KindSCA, Builder{
		Params:    []ParamDef{{Name: "counters", Doc: "group counters per bank M"}},
		ShardSafe: true, // per-bank counter groups, no shared state
		Build: func(spec SchemeSpec, banks, rowsPerBank int) (Scheme, error) {
			m, err := spec.Params.Int("counters", 0)
			if err != nil {
				return nil, err
			}
			return NewSCA(banks, rowsPerBank, m, spec.Threshold)
		},
	})
}
