package mitigation

import (
	"fmt"

	"catsim/internal/rng"
	"catsim/internal/sketch"
)

// StochasticDrawBits is the random bits consumed per replacement decision
// (a 16-bit compare against 1/(min+1), DSAC's in-DRAM RNG width).
const StochasticDrawBits = 16

// Stochastic models a DSAC-style in-DRAM tracker (Hong et al., 2023): a
// small per-bank table of exact counters where a missing row replaces the
// minimum entry only with probability 1/(min+1), inheriting min+1. Victim
// rows are refreshed when a tracked counter reaches T.
//
// Unlike the deterministic trackers there is no protection guarantee: an
// aggressor can stay untracked through an unlucky draw sequence, which is
// why the protection harness (sim's oracle-backed missed-victim metric)
// pairs this scheme with the adversarial patterns. Each draw is charged as
// PRNG bits so the energy model prices the randomness like PRA's.
type Stochastic struct {
	name      string
	banks     int
	rows      int
	threshold uint32
	tables    []*sketch.Stochastic
	src       rng.Source // the shared stream behind every table
	counts    Counts
	scratch   []RefreshRange
}

// NewStochastic builds the tracker with m counters per bank; src drives
// every bank's replacement decisions.
func NewStochastic(banks, rowsPerBank, m int, threshold uint32, src rng.Source) (*Stochastic, error) {
	if banks < 1 || rowsPerBank < 1 {
		return nil, fmt.Errorf("mitigation: need at least one bank and row")
	}
	if threshold < 1 {
		return nil, fmt.Errorf("mitigation: threshold must be positive")
	}
	if src == nil {
		return nil, fmt.Errorf("mitigation: stochastic tracker needs a random source")
	}
	s := &Stochastic{
		name:      fmt.Sprintf("DSAC_%d", m),
		banks:     banks,
		rows:      rowsPerBank,
		threshold: threshold,
		tables:    make([]*sketch.Stochastic, banks),
		src:       src,
		scratch:   make([]RefreshRange, 0, 2),
	}
	for b := 0; b < banks; b++ {
		var err error
		if s.tables[b], err = sketch.NewStochastic(m, src); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Name implements Scheme.
func (s *Stochastic) Name() string { return s.name }

// Kind implements Scheme.
func (s *Stochastic) Kind() Kind { return KindStochastic }

// CountersPerBank implements Scheme.
func (s *Stochastic) CountersPerBank() int { return s.tables[0].Cap() }

// OnActivate implements Scheme.
func (s *Stochastic) OnActivate(bank, row int) []RefreshRange {
	s.counts.Activations++
	s.counts.SRAMAccesses += 2
	tbl := s.tables[bank]
	before := tbl.Draws()
	idx, cnt := tbl.Observe(int64(row))
	s.counts.PRNGBits += (tbl.Draws() - before) * StochasticDrawBits
	if idx < 0 || cnt < s.threshold {
		return nil
	}
	tbl.SetCount(idx, 0)
	s.scratch = appendVictims(s.scratch[:0], row, s.rows, &s.counts)
	return s.scratch
}

// OnIntervalBoundary implements Scheme.
func (s *Stochastic) OnIntervalBoundary() {
	for _, t := range s.tables {
		t.Reset()
	}
}

// Counts implements Scheme.
func (s *Stochastic) Counts() Counts { return s.counts }

// ResetRun implements Resettable: the shared replacement stream rewinds
// to the state the builder's rng.NewXoshiro256(seed) would produce and
// every bank's table empties. An injected source of any other type cannot
// be re-seeded in place, so reuse is declined. Table draw totals are
// cumulative, but PRNG-bit accounting is delta-based, so the preserved
// totals cannot leak between runs.
func (s *Stochastic) ResetRun(seed uint64) bool {
	x, ok := s.src.(*rng.Xoshiro256)
	if !ok {
		return false
	}
	x.Seed(seed)
	for _, t := range s.tables {
		t.Reset()
	}
	s.counts = Counts{}
	return true
}

// Snapshot implements Snapshotter: occupied tracker entries across banks.
func (s *Stochastic) Snapshot() Snapshot {
	snap := Snapshot{Cap: s.banks * s.tables[0].Cap()}
	for _, t := range s.tables {
		snap.Live += t.Live()
	}
	return snap
}

func init() {
	Register(KindStochastic, Builder{
		Params: []ParamDef{
			{Name: "counters", Doc: "exact counters per bank"},
			{Name: "seed", Doc: "replace-minimum PRNG seed (default 1)"},
		},
		Short: "DSAC",
		Build: func(spec SchemeSpec, banks, rowsPerBank int) (Scheme, error) {
			m, err := spec.Params.Int("counters", 0)
			if err != nil {
				return nil, err
			}
			seed, err := spec.Params.Uint64("seed", 1)
			if err != nil {
				return nil, err
			}
			return NewStochastic(banks, rowsPerBank, m, spec.Threshold, rng.NewXoshiro256(seed))
		},
	})
}
