package dram

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
)

// This file makes geometry configuration data instead of code, mirroring
// the mitigation SchemeSpec: a GeometrySpec is a serializable value with a
// compact string form ("ddr5:channels=8,ranks=2,banks=32,rows=128Ki") — a
// named base preset plus field overrides — that round-trips through
// String()/ParseGeometry/JSON and backs a -geometry flag.Value in every
// CLI. Presets wrap the paper's Default* constructors and self-register
// below; ParseGeometry validates the resolved geometry, so a bad -geometry
// fails with a clear error before any simulation state is built.

// GeometrySpec names a base preset and carries the fully resolved
// geometry. The string form renders only the fields that differ from the
// base, so "2ch" and "2ch:rows=128Ki" stay compact and canonical.
type GeometrySpec struct {
	// Base is the preset the spec started from ("" reads as "2ch").
	Base string
	// Geom is the resolved geometry, always validated by ParseGeometry.
	Geom Geometry
}

// GeometryPreset is one registered named geometry.
type GeometryPreset struct {
	Name string
	Doc  string
	Geom Geometry
}

var (
	geoPresets  []GeometryPreset
	geoByName   = map[string]Geometry{}
	geoOverride = []string{"channels", "ranks", "banks", "rows", "colbytes", "linebytes"}
)

// RegisterGeometry installs a named preset. Registering a duplicate name
// or an invalid geometry panics (a programming error, caught by the
// registry test).
func RegisterGeometry(name, doc string, g Geometry) {
	name = strings.ToLower(strings.TrimSpace(name))
	if name == "" || strings.ContainsAny(name, ":,= ") {
		panic(fmt.Sprintf("dram: RegisterGeometry(%q): bad preset name", name))
	}
	if _, dup := geoByName[name]; dup {
		panic(fmt.Sprintf("dram: RegisterGeometry(%q): already registered", name))
	}
	if err := g.Validate(); err != nil {
		panic(fmt.Sprintf("dram: RegisterGeometry(%q): %v", name, err))
	}
	geoByName[name] = g
	geoPresets = append(geoPresets, GeometryPreset{Name: name, Doc: doc, Geom: g})
}

func init() {
	RegisterGeometry("2ch", "paper baseline: 2 channels, 8 banks/rank, 64Ki rows (Table I)", Default2Channel())
	RegisterGeometry("4ch", "4-channel mapping of §VIII-B (2 ranks/channel, 64 banks)", Default4Channel())
	RegisterGeometry("quad2ch", "quad-core 2-channel system (128Ki rows/bank)", QuadCore2Channel())
	RegisterGeometry("quad4ch", "quad-core 4-channel system (128Ki rows/bank)", QuadCore4Channel())
	RegisterGeometry("ddr5", "8-channel DDR5-class organisation (2 ranks, 32 banks/rank, 8KiB rows)", DDR5_8Channel())
}

// DDR5_8Channel is an 8-channel DDR5-class organisation: 2 ranks/channel,
// 32 banks/rank and 8 KiB rows. It is the sharded-engine scaling target,
// not a paper configuration (Table I is Default2Channel).
func DDR5_8Channel() Geometry {
	return Geometry{
		Channels:    8,
		RanksPerCh:  2,
		BanksPerRk:  32,
		RowsPerBank: 64 * 1024,
		ColBytes:    8 * 1024,
		LineBytes:   64,
	}
}

// Geometries lists the registered presets in registration order.
func Geometries() []GeometryPreset {
	out := make([]GeometryPreset, len(geoPresets))
	copy(out, geoPresets)
	return out
}

// Geometry returns the resolved geometry.
func (s GeometrySpec) Geometry() Geometry { return s.Geom }

// DefaultGeometrySpec is the paper's baseline ("2ch").
func DefaultGeometrySpec() GeometrySpec {
	return GeometrySpec{Base: "2ch", Geom: Default2Channel()}
}

// SpecOf renders a geometry as a spec: an exactly matching preset when one
// exists, otherwise the baseline plus overrides.
func SpecOf(g Geometry) GeometrySpec {
	for _, p := range geoPresets {
		if p.Geom == g {
			return GeometrySpec{Base: p.Name, Geom: g}
		}
	}
	return GeometrySpec{Base: "2ch", Geom: g}
}

// fieldOf returns the override field's value of g, by canonical name.
func fieldOf(g Geometry, name string) int {
	switch name {
	case "channels":
		return g.Channels
	case "ranks":
		return g.RanksPerCh
	case "banks":
		return g.BanksPerRk
	case "rows":
		return g.RowsPerBank
	case "colbytes":
		return g.ColBytes
	case "linebytes":
		return g.LineBytes
	}
	panic("dram: unknown geometry field " + name)
}

func setField(g *Geometry, name string, v int) {
	switch name {
	case "channels":
		g.Channels = v
	case "ranks":
		g.RanksPerCh = v
	case "banks":
		g.BanksPerRk = v
	case "rows":
		g.RowsPerBank = v
	case "colbytes":
		g.ColBytes = v
	case "linebytes":
		g.LineBytes = v
	}
}

// formatSize renders a dimension with a Ki/Mi suffix when exact.
func formatSize(v int) string {
	switch {
	case v >= 1<<20 && v%(1<<20) == 0:
		return strconv.Itoa(v>>20) + "Mi"
	case v >= 1<<10 && v%(1<<10) == 0:
		return strconv.Itoa(v>>10) + "Ki"
	default:
		return strconv.Itoa(v)
	}
}

// parseSize parses a dimension with an optional Ki/Mi/Gi suffix.
func parseSize(s string) (int, error) {
	mult := 1
	switch {
	case strings.HasSuffix(s, "Ki"):
		mult, s = 1<<10, strings.TrimSuffix(s, "Ki")
	case strings.HasSuffix(s, "Mi"):
		mult, s = 1<<20, strings.TrimSuffix(s, "Mi")
	case strings.HasSuffix(s, "Gi"):
		mult, s = 1<<30, strings.TrimSuffix(s, "Gi")
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("want integer (optionally Ki/Mi/Gi)")
	}
	return n * mult, nil
}

// String renders the compact form: the base preset name, then the fields
// that differ from it in canonical order, e.g. "2ch:channels=8,rows=128Ki".
// ParseGeometry inverts it.
func (s GeometrySpec) String() string {
	base := s.Base
	if base == "" {
		base = "2ch"
	}
	ref, ok := geoByName[base]
	if !ok {
		// Unknown base (hand-built spec): spell every field out over the
		// baseline so the string still parses back to the same geometry.
		base, ref = "2ch", Default2Channel()
	}
	var parts []string
	for _, name := range geoOverride {
		if v := fieldOf(s.Geom, name); v != fieldOf(ref, name) {
			parts = append(parts, name+"="+formatSize(v))
		}
	}
	if len(parts) == 0 {
		return base
	}
	return base + ":" + strings.Join(parts, ",")
}

// ParseGeometry parses the compact form "<preset>" or
// "<preset>:field=value,..." (fields: channels, ranks, banks, rows,
// colbytes, linebytes; values accept Ki/Mi/Gi suffixes). A bare
// "field=value,..." list applies over the 2ch baseline. The resolved
// geometry is validated, so a non-power-of-two or non-positive dimension
// fails here with a clear error.
func ParseGeometry(str string) (GeometrySpec, error) {
	in := strings.TrimSpace(str)
	basePart, paramPart, hasParams := strings.Cut(in, ":")
	if !hasParams && strings.Contains(basePart, "=") {
		basePart, paramPart, hasParams = "2ch", basePart, true
	}
	base := strings.ToLower(strings.TrimSpace(basePart))
	if base == "" {
		base = "2ch"
	}
	geom, ok := geoByName[base]
	if !ok {
		names := make([]string, len(geoPresets))
		for i, p := range geoPresets {
			names[i] = p.Name
		}
		return GeometrySpec{}, fmt.Errorf("dram: geometry %q: unknown preset %q (valid: %s)",
			str, basePart, strings.Join(names, ", "))
	}
	spec := GeometrySpec{Base: base, Geom: geom}
	if !hasParams {
		return spec, nil
	}
	seen := map[string]bool{}
	for _, kv := range strings.Split(paramPart, ",") {
		name, value, ok := strings.Cut(kv, "=")
		name = strings.ToLower(strings.TrimSpace(name))
		value = strings.TrimSpace(value)
		if !ok || name == "" || value == "" {
			return GeometrySpec{}, fmt.Errorf("dram: geometry %q: field %q is not name=value", str, kv)
		}
		valid := false
		for _, f := range geoOverride {
			if f == name {
				valid = true
				break
			}
		}
		if !valid {
			return GeometrySpec{}, fmt.Errorf("dram: geometry %q: unknown field %q (accepted: %s)",
				str, name, strings.Join(geoOverride, ", "))
		}
		if seen[name] {
			return GeometrySpec{}, fmt.Errorf("dram: geometry %q: duplicate field %q", str, name)
		}
		seen[name] = true
		v, err := parseSize(value)
		if err != nil {
			return GeometrySpec{}, fmt.Errorf("dram: geometry %q: bad field %s=%q: %v", str, name, value, err)
		}
		setField(&spec.Geom, name, v)
	}
	if err := spec.Geom.Validate(); err != nil {
		return GeometrySpec{}, fmt.Errorf("dram: geometry %q: %w", str, err)
	}
	return spec, nil
}

// Set implements flag.Value, so a *GeometrySpec can back a -geometry flag.
func (s *GeometrySpec) Set(str string) error {
	spec, err := ParseGeometry(str)
	if err != nil {
		return err
	}
	*s = spec
	return nil
}

// MarshalJSON renders the compact string form (lossless: every override is
// an exact integer).
func (s GeometrySpec) MarshalJSON() ([]byte, error) {
	return json.Marshal(s.String())
}

// UnmarshalJSON parses the compact string form and re-validates.
func (s *GeometrySpec) UnmarshalJSON(data []byte) error {
	var str string
	if err := json.Unmarshal(data, &str); err != nil {
		return err
	}
	return s.Set(str)
}
