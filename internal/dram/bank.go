package dram

// Bank tracks the availability of one DRAM bank for the event-driven
// controller model. Under the closed-page policy every demand access is an
// ACTIVATE/column/PRECHARGE sequence, so a bank is described completely by
// the cycle at which it next becomes free, plus bookkeeping for activation
// counting (the input to the crosstalk-mitigation schemes).
type Bank struct {
	// FreeAt is the bus cycle at which the bank can accept a new ACTIVATE.
	FreeAt int64

	// RefreshDebt is outstanding victim-refresh work in bus cycles. The
	// controller drains it in idle time and interleaves it with demand one
	// row at a time, so a demand request never waits behind a whole
	// refresh burst — only behind the row refresh in progress (the convoy
	// avoidance real TRR implementations use).
	RefreshDebt int64

	// Activations counts row ACTIVATEs since construction (statistics).
	Activations int64

	// VictimRefreshRows counts rows refreshed on demand by a mitigation
	// scheme since construction (statistics).
	VictimRefreshRows int64

	// StallCycles accumulates cycles during which demand requests waited
	// for victim refreshes (ETO attribution).
	StallCycles int64
}

// Access occupies the bank for one closed-page access beginning no earlier
// than now, returning the cycle at which the data transfer completes and
// recording the activation. latency and occupancy come from Timing.
func (b *Bank) Access(now int64, latency, occupancy int) (done int64) {
	start := now
	if b.FreeAt > start {
		start = b.FreeAt
	}
	b.FreeAt = start + int64(occupancy)
	b.Activations++
	return start + int64(latency)
}

// BlockFor occupies the bank for n cycles starting no earlier than now,
// without recording an activation (auto-refresh and victim refreshes; the
// mitigation scheme decides whether refresh ACTIVATEs feed back into the
// counters — the paper's schemes do not count refresh operations).
func (b *Bank) BlockFor(now int64, n int64) (busyUntil int64) {
	start := now
	if b.FreeAt > start {
		start = b.FreeAt
	}
	b.FreeAt = start + n
	return b.FreeAt
}

// VictimRefresh occupies the bank for rows*rowCycles starting no earlier
// than now and records the refreshed rows.
func (b *Bank) VictimRefresh(now int64, rows int, rowCycles int) (busyUntil int64) {
	b.VictimRefreshRows += int64(rows)
	return b.BlockFor(now, int64(rows)*int64(rowCycles))
}
