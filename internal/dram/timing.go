package dram

import "fmt"

// Timing holds the DDR3 timing constraints the controller respects, expressed
// in memory-bus cycles (800 MHz => 1.25 ns per cycle for DDR3-1600, the
// paper's Table I configuration). The values follow the Micron DDR3 SDRAM
// MT41J512M8 data sheet the paper cites [49].
type Timing struct {
	BusMHz int // memory bus frequency (command clock)

	TRCD   int // ACTIVATE to internal READ/WRITE delay
	TRP    int // PRECHARGE to ACTIVATE delay
	TCAS   int // READ to first data (CL)
	TCWD   int // WRITE to first data (CWL)
	TRAS   int // ACTIVATE to PRECHARGE (minimum row-open time)
	TRC    int // ACTIVATE to ACTIVATE, same bank (TRAS + TRP)
	TBurst int // data-bus occupancy per 64B line (BL8, DDR => 4 cycles)
	TRRD   int // ACTIVATE to ACTIVATE, different banks, same rank
	TFAW   int // rolling four-activate window per rank
	TWR    int // write recovery before PRECHARGE
	TRFC   int // auto-REFRESH command duration
	TREFI  int // average interval between auto-REFRESH commands
}

// DDR3_1600 returns the baseline timing (in 800 MHz bus cycles).
func DDR3_1600() Timing {
	return Timing{
		BusMHz: 800,
		TRCD:   11,
		TRP:    11,
		TCAS:   11,
		TCWD:   8,
		TRAS:   28,
		TRC:    39,
		TBurst: 4,
		TRRD:   5,
		TFAW:   24,
		TWR:    12,
		TRFC:   208,  // 260 ns for a 4 Gb device
		TREFI:  6240, // 7.8 us
	}
}

// CycleNS returns the duration of one bus cycle in nanoseconds.
func (t Timing) CycleNS() float64 { return 1000 / float64(t.BusMHz) }

// ReadLatency is the closed-page read service time in bus cycles:
// ACTIVATE -> READ -> data, i.e. tRCD + CL + burst.
func (t Timing) ReadLatency() int { return t.TRCD + t.TCAS + t.TBurst }

// WriteLatency is the closed-page write service time in bus cycles.
func (t Timing) WriteLatency() int { return t.TRCD + t.TCWD + t.TBurst }

// BankOccupancy is how long one closed-page access keeps its bank busy:
// the full row cycle tRC (ACTIVATE through PRECHARGE completion).
func (t Timing) BankOccupancy() int { return t.TRC }

// RowRefreshCycles is the bank-busy time to refresh a single row on demand
// (an internal ACTIVATE+PRECHARGE pair): tRC. Victim-row refreshes issued by
// the mitigation schemes are modelled as sequences of these.
func (t Timing) RowRefreshCycles() int { return t.TRC }

// Validate reports an error for inconsistent parameters.
func (t Timing) Validate() error {
	if t.BusMHz <= 0 {
		return errf("BusMHz must be positive, got %d", t.BusMHz)
	}
	for _, f := range []struct {
		name string
		v    int
	}{
		{"TRCD", t.TRCD}, {"TRP", t.TRP}, {"TCAS", t.TCAS}, {"TCWD", t.TCWD},
		{"TRAS", t.TRAS}, {"TRC", t.TRC}, {"TBurst", t.TBurst}, {"TRRD", t.TRRD},
		{"TFAW", t.TFAW}, {"TWR", t.TWR}, {"TRFC", t.TRFC}, {"TREFI", t.TREFI},
	} {
		if f.v <= 0 {
			return errf("%s must be positive, got %d", f.name, f.v)
		}
	}
	if t.TRC < t.TRAS+t.TRP {
		return errf("TRC=%d < TRAS+TRP=%d", t.TRC, t.TRAS+t.TRP)
	}
	if t.TFAW < t.TRRD {
		return errf("TFAW=%d < TRRD=%d", t.TFAW, t.TRRD)
	}
	return nil
}

func errf(format string, args ...any) error {
	return fmt.Errorf("dram: "+format, args...)
}
