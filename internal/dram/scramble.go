package dram

import "fmt"

// Row-address scrambling (paper §VII): "We assume that either the memory
// controller knows which rows are physically adjacent to each other [57]
// or the DRAM chip is responsible for refreshing the row and its
// neighbors [58]." Real DRAMs remap logical row addresses for repair and
// layout reasons (van de Goor & Schanstra, DELTA 2002), so crosstalk
// neighbours are adjacent in PHYSICAL space, not logical space. A
// Scrambler translates; the simulator feeds mitigation schemes physical
// rows (modelling a controller that knows the mapping), and the test suite
// shows protection breaks if the translation is (incorrectly) omitted.
type Scrambler interface {
	// ToPhysical maps a logical row to its physical row.
	ToPhysical(logical int) int
	// ToLogical is the inverse.
	ToLogical(physical int) int
	// Name identifies the scheme in reports.
	Name() string
}

// IdentityScrambler is the no-remap default.
type IdentityScrambler struct{}

// ToPhysical implements Scrambler.
func (IdentityScrambler) ToPhysical(l int) int { return l }

// ToLogical implements Scrambler.
func (IdentityScrambler) ToLogical(p int) int { return p }

// Name implements Scrambler.
func (IdentityScrambler) Name() string { return "identity" }

// XORScrambler flips row-address bits with a fixed mask — the folded/
// twisted layouts of van de Goor's taxonomy. XOR is an involution, so the
// mapping is its own inverse.
type XORScrambler struct {
	mask int
	rows int
}

// NewXORScrambler builds the scrambler for a bank of `rows` rows.
func NewXORScrambler(rows, mask int) (*XORScrambler, error) {
	if rows <= 0 || rows&(rows-1) != 0 {
		return nil, fmt.Errorf("dram: rows %d must be a power of two", rows)
	}
	if mask < 0 || mask >= rows {
		return nil, fmt.Errorf("dram: mask %#x out of row range", mask)
	}
	return &XORScrambler{mask: mask, rows: rows}, nil
}

// ToPhysical implements Scrambler.
func (s *XORScrambler) ToPhysical(l int) int { return l ^ s.mask }

// ToLogical implements Scrambler.
func (s *XORScrambler) ToLogical(p int) int { return p ^ s.mask }

// Name implements Scrambler.
func (s *XORScrambler) Name() string { return fmt.Sprintf("xor-%#x", s.mask) }

// StrideScrambler interleaves rows with an odd stride:
// physical = (logical * stride) mod rows. Odd strides are units modulo a
// power of two, so the map is a bijection, and any stride >= 3 guarantees
// that NO two logically adjacent rows remain physically adjacent — the
// worst case for a controller that ignores the remap, and therefore the
// configuration the misconfiguration study uses. (Note that XOR layouts
// mostly preserve |adjacency| — the carry out of l -> l+1 only crosses a
// mask bit at block boundaries — which is itself worth knowing: simple
// folded layouts barely perturb victim adjacency.)
type StrideScrambler struct {
	stride, inverse, rows int
}

// NewStrideScrambler builds the interleaver; stride must be odd and >= 3.
func NewStrideScrambler(rows, stride int) (*StrideScrambler, error) {
	if rows <= 0 || rows&(rows-1) != 0 {
		return nil, fmt.Errorf("dram: rows %d must be a power of two", rows)
	}
	if stride < 3 || stride%2 == 0 || stride >= rows {
		return nil, fmt.Errorf("dram: stride %d must be odd, >= 3 and < rows", stride)
	}
	// Modular inverse of stride mod rows by Newton iteration (rows = 2^k).
	inv := stride // inverse mod 8 for odd numbers: x*x*x ≡ x^-1... iterate
	for i := 0; i < 6; i++ {
		inv = inv * (2 - stride*inv) & (rows - 1)
	}
	inv &= rows - 1
	if inv < 0 {
		inv += rows
	}
	if stride*inv&(rows-1) != 1 {
		return nil, fmt.Errorf("dram: internal error computing inverse of %d", stride)
	}
	return &StrideScrambler{stride: stride, inverse: inv, rows: rows}, nil
}

// ToPhysical implements Scrambler.
func (s *StrideScrambler) ToPhysical(l int) int { return (l * s.stride) & (s.rows - 1) }

// ToLogical implements Scrambler.
func (s *StrideScrambler) ToLogical(p int) int { return (p * s.inverse) & (s.rows - 1) }

// Name implements Scrambler.
func (s *StrideScrambler) Name() string { return fmt.Sprintf("stride-%d", s.stride) }
