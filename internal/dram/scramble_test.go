package dram

import (
	"testing"
	"testing/quick"
)

func TestScramblersAreBijective(t *testing.T) {
	const rows = 1 << 10
	xor, err := NewXORScrambler(rows, 0x155)
	if err != nil {
		t.Fatal(err)
	}
	stride, err := NewStrideScrambler(rows, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []Scrambler{IdentityScrambler{}, xor, stride} {
		seen := make(map[int]bool, rows)
		for l := 0; l < rows; l++ {
			p := s.ToPhysical(l)
			if p < 0 || p >= rows {
				t.Fatalf("%s: physical %d out of range", s.Name(), p)
			}
			if seen[p] {
				t.Fatalf("%s: physical %d hit twice", s.Name(), p)
			}
			seen[p] = true
			if back := s.ToLogical(p); back != l {
				t.Fatalf("%s: round trip %d -> %d -> %d", s.Name(), l, p, back)
			}
		}
	}
}

func TestStrideScramblerBreaksAllAdjacency(t *testing.T) {
	// The point of the substrate: with a stride interleave, no logical
	// neighbours remain physical neighbours, so adjacency-based
	// mitigation must translate.
	s, err := NewStrideScrambler(1<<10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for l := 0; l < 1<<10-1; l++ {
		d := s.ToPhysical(l) - s.ToPhysical(l+1)
		if d == 1 || d == -1 {
			t.Fatalf("rows %d and %d stayed adjacent (physical %d, %d)",
				l, l+1, s.ToPhysical(l), s.ToPhysical(l+1))
		}
	}
}

func TestXORScramblerMostlyPreservesAdjacency(t *testing.T) {
	// Documented property: folded (XOR) layouts only break adjacency at
	// carry boundaries, so a controller ignoring them is *mostly* safe —
	// which is why the misconfiguration study uses the stride layout.
	xor, _ := NewXORScrambler(1<<10, 0x155)
	broken := 0
	for l := 0; l < 1<<10-1; l++ {
		d := xor.ToPhysical(l) - xor.ToPhysical(l+1)
		if d != 1 && d != -1 {
			broken++
		}
	}
	if broken > (1<<10)/2 {
		t.Errorf("XOR broke adjacency for %d of 1023 pairs; expected a minority", broken)
	}
}

func TestScramblerValidation(t *testing.T) {
	if _, err := NewXORScrambler(1000, 1); err == nil {
		t.Error("expected rows error")
	}
	if _, err := NewXORScrambler(1024, 4096); err == nil {
		t.Error("expected mask error")
	}
	if _, err := NewStrideScrambler(1024, 4); err == nil {
		t.Error("expected odd-stride error")
	}
	if _, err := NewStrideScrambler(1024, 2048); err == nil {
		t.Error("expected stride-too-large error")
	}
	if _, err := NewStrideScrambler(1000, 5); err == nil {
		t.Error("expected rows error")
	}
}

func TestStrideQuickRoundTrip(t *testing.T) {
	s, err := NewStrideScrambler(1<<12, 37)
	if err != nil {
		t.Fatal(err)
	}
	f := func(raw uint16) bool {
		l := int(raw) & (1<<12 - 1)
		return s.ToLogical(s.ToPhysical(l)) == l
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
