// Package dram models the DRAM devices the paper's evaluation targets: the
// organisation (channels, ranks, banks, rows), Micron DDR3-1600 timing, the
// per-bank state needed by a closed-page memory controller, and the energy
// constants the crosstalk-mitigation power analysis depends on.
//
// The paper's system (Table I): 16 GB over 2 channels (one 8 GB DIMM each),
// 1 rank/channel, 8 banks/rank, 64K rows/bank, 64 B cache lines, 800 MHz
// bus, closed-page FR-FCFS. The quad-core configurations of §VIII-B double
// the rows per bank to 128K, and the 4-channel mapping quadruples the
// channel count while keeping bank size fixed.
package dram

import "fmt"

// Geometry describes the physical organisation of the memory system.
type Geometry struct {
	Channels    int // independent memory channels
	RanksPerCh  int // ranks per channel
	BanksPerRk  int // banks per rank
	RowsPerBank int // DRAM rows per bank
	ColBytes    int // bytes per row (row buffer size)
	LineBytes   int // cache-line (transfer) size
}

// Default2Channel is the paper's baseline dual-core organisation (Table I).
func Default2Channel() Geometry {
	return Geometry{
		Channels:    2,
		RanksPerCh:  1,
		BanksPerRk:  8,
		RowsPerBank: 64 * 1024,
		ColBytes:    16 * 1024, // 16 GB / 16 banks / 64K rows

		LineBytes: 64,
	}
}

// Default4Channel is the 4-channel mapping policy of §VIII-B: bank size is
// kept fixed, so the number of banks in the system quadruples relative to
// the 2-channel baseline (16 -> 64 banks).
func Default4Channel() Geometry {
	g := Default2Channel()
	g.Channels = 4
	g.RanksPerCh = 2
	return g
}

// QuadCore2Channel is the quad-core 2-channel configuration of §VIII-B:
// "the banks in dual core and quad core systems include 64K and 128K rows,
// respectively."
func QuadCore2Channel() Geometry {
	g := Default2Channel()
	g.RowsPerBank = 128 * 1024
	return g
}

// QuadCore4Channel is the quad-core configuration under the 4-channel
// mapping policy.
func QuadCore4Channel() Geometry {
	g := Default4Channel()
	g.RowsPerBank = 128 * 1024
	return g
}

// TotalBanks returns the number of independently schedulable banks.
func (g Geometry) TotalBanks() int {
	return g.Channels * g.RanksPerCh * g.BanksPerRk
}

// TotalBytes returns the memory capacity implied by the geometry.
func (g Geometry) TotalBytes() int64 {
	return int64(g.Channels) * int64(g.RanksPerCh) * int64(g.BanksPerRk) *
		int64(g.RowsPerBank) * int64(g.ColBytes)
}

// LinesPerRow returns the number of cache lines stored in one row.
func (g Geometry) LinesPerRow() int { return g.ColBytes / g.LineBytes }

// Validate reports an error if any dimension is non-positive or not a power
// of two. Power-of-two dimensions are required by the address-mapping
// policies (bit slicing) and by CAT's binary row partitioning.
func (g Geometry) Validate() error {
	check := func(name string, v int) error {
		if v <= 0 {
			return fmt.Errorf("dram: %s must be positive, got %d", name, v)
		}
		if v&(v-1) != 0 {
			return fmt.Errorf("dram: %s must be a power of two, got %d", name, v)
		}
		return nil
	}
	for _, f := range []struct {
		name string
		v    int
	}{
		{"Channels", g.Channels},
		{"RanksPerCh", g.RanksPerCh},
		{"BanksPerRk", g.BanksPerRk},
		{"RowsPerBank", g.RowsPerBank},
		{"ColBytes", g.ColBytes},
		{"LineBytes", g.LineBytes},
	} {
		if err := check(f.name, f.v); err != nil {
			return err
		}
	}
	if g.LineBytes > g.ColBytes {
		return fmt.Errorf("dram: line size %d exceeds row size %d", g.LineBytes, g.ColBytes)
	}
	return nil
}

// BankID identifies one bank in the system.
type BankID struct {
	Channel int
	Rank    int
	Bank    int
}

// Flat returns a dense index for the bank in [0, TotalBanks).
func (g Geometry) Flat(id BankID) int {
	return (id.Channel*g.RanksPerCh+id.Rank)*g.BanksPerRk + id.Bank
}

// Unflat is the inverse of Flat.
func (g Geometry) Unflat(flat int) BankID {
	bank := flat % g.BanksPerRk
	flat /= g.BanksPerRk
	rank := flat % g.RanksPerCh
	ch := flat / g.RanksPerCh
	return BankID{Channel: ch, Rank: rank, Bank: bank}
}
