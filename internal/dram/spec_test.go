package dram

import (
	"encoding/json"
	"flag"
	"strings"
	"testing"
)

// TestGeometryPresetsRegistered: every preset resolves by name, validates,
// and round-trips through the compact string form untouched.
func TestGeometryPresetsRegistered(t *testing.T) {
	want := map[string]Geometry{
		"2ch":     Default2Channel(),
		"4ch":     Default4Channel(),
		"quad2ch": QuadCore2Channel(),
		"quad4ch": QuadCore4Channel(),
		"ddr5":    DDR5_8Channel(),
	}
	got := Geometries()
	if len(got) != len(want) {
		t.Fatalf("got %d presets, want %d", len(got), len(want))
	}
	for _, p := range got {
		if p.Geom != want[p.Name] {
			t.Errorf("preset %q = %+v, want %+v", p.Name, p.Geom, want[p.Name])
		}
		if p.Doc == "" {
			t.Errorf("preset %q has no doc string", p.Name)
		}
		spec, err := ParseGeometry(p.Name)
		if err != nil {
			t.Fatalf("ParseGeometry(%q): %v", p.Name, err)
		}
		if spec.Geom != p.Geom || spec.String() != p.Name {
			t.Errorf("ParseGeometry(%q) = %v (string %q), want the preset itself", p.Name, spec.Geom, spec.String())
		}
	}
}

// TestGeometrySpecRoundTrip: string and JSON forms invert exactly,
// including Ki-suffixed overrides and the issue's ddr5 example.
func TestGeometrySpecRoundTrip(t *testing.T) {
	cases := []string{
		"2ch",
		"4ch:rows=128Ki",
		"ddr5:channels=8,ranks=2,banks=32,rows=128Ki",
		"2ch:channels=8,colbytes=8Ki",
		"channels=4", // bare overrides apply over the 2ch baseline
		"quad4ch:linebytes=128",
	}
	for _, in := range cases {
		spec, err := ParseGeometry(in)
		if err != nil {
			t.Fatalf("ParseGeometry(%q): %v", in, err)
		}
		again, err := ParseGeometry(spec.String())
		if err != nil {
			t.Fatalf("ParseGeometry(String(%q)=%q): %v", in, spec.String(), err)
		}
		if again != spec {
			t.Errorf("%q: string round-trip %+v != %+v", in, again, spec)
		}
		blob, err := json.Marshal(spec)
		if err != nil {
			t.Fatalf("marshal %q: %v", in, err)
		}
		var back GeometrySpec
		if err := json.Unmarshal(blob, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", blob, err)
		}
		if back != spec {
			t.Errorf("%q: JSON round-trip %+v != %+v", in, back, spec)
		}
	}
	spec, err := ParseGeometry("ddr5:channels=8,rows=128Ki")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Geom.Channels != 8 || spec.Geom.RowsPerBank != 128*1024 {
		t.Errorf("override mis-applied: %+v", spec.Geom)
	}
}

// TestGeometrySpecFlagValue: a *GeometrySpec works as a flag.Value.
func TestGeometrySpecFlagValue(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	spec := DefaultGeometrySpec()
	fs.Var(&spec, "geometry", "")
	if err := fs.Parse([]string{"-geometry", "4ch:rows=128Ki"}); err != nil {
		t.Fatal(err)
	}
	want := QuadCore4Channel()
	if spec.Geometry() != want {
		t.Errorf("flag parsed %+v, want %+v", spec.Geometry(), want)
	}
	fs2 := flag.NewFlagSet("t2", flag.ContinueOnError)
	fs2.SetOutput(&strings.Builder{})
	spec2 := DefaultGeometrySpec()
	fs2.Var(&spec2, "geometry", "")
	if err := fs2.Parse([]string{"-geometry", "2ch:rows=100"}); err == nil {
		t.Error("non-power-of-two rows parsed without error")
	}
}

// TestParseGeometryErrors: every malformed form fails with a message that
// names the problem (the satellite "bad geometry fails loudly" contract).
func TestParseGeometryErrors(t *testing.T) {
	cases := []struct{ in, want string }{
		{"ddr6", "unknown preset"},
		{"2ch:gadgets=3", "unknown field"},
		{"2ch:channels", "not name=value"},
		{"2ch:channels=abc", "want integer"},
		{"2ch:channels=3", "power of two"},
		{"2ch:rows=0", "positive"},
		{"2ch:channels=2,channels=4", "duplicate field"},
		{"2ch:linebytes=32Ki", "exceeds row size"},
	}
	for _, c := range cases {
		_, err := ParseGeometry(c.in)
		if err == nil {
			t.Errorf("ParseGeometry(%q) = nil error, want %q", c.in, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("ParseGeometry(%q) error %q does not mention %q", c.in, err, c.want)
		}
	}
}

// TestSpecOf: a known geometry renders as its preset name; an unknown one
// spells out its differences over the baseline and still round-trips.
func TestSpecOf(t *testing.T) {
	if s := SpecOf(QuadCore4Channel()); s.String() != "quad4ch" {
		t.Errorf("SpecOf(quad4ch) = %q", s.String())
	}
	g := Default2Channel()
	g.Channels = 16
	s := SpecOf(g)
	back, err := ParseGeometry(s.String())
	if err != nil || back.Geom != g {
		t.Errorf("SpecOf custom: %q parsed back to %+v, %v", s.String(), back.Geom, err)
	}
}
