package dram

import (
	"testing"
	"testing/quick"
)

func TestDefaultGeometryMatchesTableI(t *testing.T) {
	g := Default2Channel()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := g.TotalBanks(); got != 16 {
		t.Errorf("TotalBanks = %d, want 16", got)
	}
	if got := g.TotalBytes(); got != 16<<30 {
		t.Errorf("TotalBytes = %d, want 16 GiB", got)
	}
	if g.RowsPerBank != 64*1024 {
		t.Errorf("RowsPerBank = %d, want 64K", g.RowsPerBank)
	}
	if g.LinesPerRow() != 256 {
		t.Errorf("LinesPerRow = %d, want 256", g.LinesPerRow())
	}
}

func TestFourChannelQuadruplesBanks(t *testing.T) {
	g := Default4Channel()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := g.TotalBanks(); got != 64 {
		t.Errorf("TotalBanks = %d, want 64 (paper: 16 -> 64)", got)
	}
}

func TestQuadCoreGeometryDoublesRows(t *testing.T) {
	if g := QuadCore2Channel(); g.RowsPerBank != 128*1024 {
		t.Errorf("RowsPerBank = %d, want 128K", g.RowsPerBank)
	}
	if g := QuadCore4Channel(); g.RowsPerBank != 128*1024 || g.TotalBanks() != 64 {
		t.Errorf("quad-core 4ch: got %d rows, %d banks", g.RowsPerBank, g.TotalBanks())
	}
}

func TestGeometryValidateRejectsBadDimensions(t *testing.T) {
	g := Default2Channel()
	g.Channels = 3
	if err := g.Validate(); err == nil {
		t.Error("expected error for non-power-of-two channels")
	}
	g = Default2Channel()
	g.RowsPerBank = 0
	if err := g.Validate(); err == nil {
		t.Error("expected error for zero rows")
	}
	g = Default2Channel()
	g.LineBytes = g.ColBytes * 2
	if err := g.Validate(); err == nil {
		t.Error("expected error for line larger than row")
	}
}

func TestFlatUnflatRoundTrip(t *testing.T) {
	g := Default4Channel()
	seen := make(map[int]bool)
	for ch := 0; ch < g.Channels; ch++ {
		for rk := 0; rk < g.RanksPerCh; rk++ {
			for bk := 0; bk < g.BanksPerRk; bk++ {
				id := BankID{ch, rk, bk}
				f := g.Flat(id)
				if f < 0 || f >= g.TotalBanks() {
					t.Fatalf("Flat(%v) = %d out of range", id, f)
				}
				if seen[f] {
					t.Fatalf("Flat(%v) = %d collides", id, f)
				}
				seen[f] = true
				if back := g.Unflat(f); back != id {
					t.Fatalf("Unflat(Flat(%v)) = %v", id, back)
				}
			}
		}
	}
}

func TestTimingDefaultsValid(t *testing.T) {
	tm := DDR3_1600()
	if err := tm.Validate(); err != nil {
		t.Fatal(err)
	}
	if tm.CycleNS() != 1.25 {
		t.Errorf("CycleNS = %v, want 1.25", tm.CycleNS())
	}
	if tm.TRC != tm.TRAS+tm.TRP {
		t.Errorf("TRC = %d, want TRAS+TRP = %d", tm.TRC, tm.TRAS+tm.TRP)
	}
	if got := tm.ReadLatency(); got != 26 {
		t.Errorf("ReadLatency = %d, want 26 cycles", got)
	}
}

func TestTimingValidateCatchesInconsistency(t *testing.T) {
	tm := DDR3_1600()
	tm.TRC = tm.TRAS // < TRAS+TRP
	if err := tm.Validate(); err == nil {
		t.Error("expected TRC consistency error")
	}
	tm = DDR3_1600()
	tm.TREFI = 0
	if err := tm.Validate(); err == nil {
		t.Error("expected positivity error")
	}
}

func TestBankAccessSerialises(t *testing.T) {
	tm := DDR3_1600()
	var b Bank
	done1 := b.Access(0, tm.ReadLatency(), tm.BankOccupancy())
	if done1 != int64(tm.ReadLatency()) {
		t.Errorf("first access done at %d, want %d", done1, tm.ReadLatency())
	}
	// A second access issued immediately must wait for the bank.
	done2 := b.Access(1, tm.ReadLatency(), tm.BankOccupancy())
	want := int64(tm.BankOccupancy() + tm.ReadLatency())
	if done2 != want {
		t.Errorf("second access done at %d, want %d", done2, want)
	}
	if b.Activations != 2 {
		t.Errorf("Activations = %d, want 2", b.Activations)
	}
}

func TestBankVictimRefreshBlocks(t *testing.T) {
	tm := DDR3_1600()
	var b Bank
	busy := b.VictimRefresh(100, 10, tm.RowRefreshCycles())
	if busy != 100+10*int64(tm.TRC) {
		t.Errorf("busyUntil = %d, want %d", busy, 100+10*int64(tm.TRC))
	}
	if b.VictimRefreshRows != 10 {
		t.Errorf("VictimRefreshRows = %d, want 10", b.VictimRefreshRows)
	}
	if b.Activations != 0 {
		t.Error("victim refresh must not count as demand activation")
	}
}

func TestBankAccessNeverTravelsBackInTime(t *testing.T) {
	tm := DDR3_1600()
	f := func(gaps []uint16) bool {
		var b Bank
		now, lastDone := int64(0), int64(0)
		for _, gap := range gaps {
			now += int64(gap % 100)
			done := b.Access(now, tm.ReadLatency(), tm.BankOccupancy())
			if done < now+int64(tm.ReadLatency()) || done < lastDone {
				return false
			}
			lastDone = done
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRegularRefreshEnergy(t *testing.T) {
	// 2.5 mW over 64 ms = 160 uJ = 1.6e5 nJ.
	if got := RegularRefreshEnergyNJ(); got != 160000 {
		t.Errorf("RegularRefreshEnergyNJ = %v, want 160000", got)
	}
}
