package dram

// Energy constants used by the crosstalk-mitigation power analysis.
//
// The paper's CMRPO metric (§VI) is defined relative to the regular refresh
// power: "2.5 mW to refresh 64K rows during a 64 ms refresh interval
// [17, 49]", and victim-row refreshes cost "1 nJ per row [60]" (Ghosh &
// Lee, Smart Refresh, MICRO 2007).
const (
	// RowRefreshNJ is the energy to refresh one DRAM row on demand.
	RowRefreshNJ = 1.0

	// RegularRefreshPowerMW is the per-bank regular (auto) refresh power
	// against which CMRPO is normalised.
	RegularRefreshPowerMW = 2.5

	// RefreshIntervalMS is the DDR3 auto-refresh window (tREFW): every row
	// is refreshed once per interval.
	RefreshIntervalMS = 64.0
)

// RefreshIntervalNS returns the auto-refresh window in nanoseconds.
func RefreshIntervalNS() float64 { return RefreshIntervalMS * 1e6 }

// RegularRefreshEnergyNJ returns the per-bank energy spent on regular
// refresh during one interval, implied by the 2.5 mW constant. It is used
// only for reporting; CMRPO uses the power form directly.
func RegularRefreshEnergyNJ() float64 {
	// W * ns = nJ: (2.5e-3 W) * (6.4e7 ns) = 1.6e5 nJ per bank per interval.
	return RegularRefreshPowerMW * 1e-3 * RefreshIntervalNS()
}
