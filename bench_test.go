// Benchmarks: one per table and figure of the paper's evaluation (the
// regeneration harness at reduced scale — cmd/experiments runs the full
// versions), plus micro-benchmarks of the core data structures.
package catsim

import (
	"io"
	"testing"

	"catsim/internal/core"
	"catsim/internal/experiments"
	"catsim/internal/mitigation"
	"catsim/internal/reliability"
	"catsim/internal/rng"
	"catsim/internal/runner"
	"catsim/internal/sim"
	"catsim/internal/trace"
)

// benchOpts is the reduced-scale configuration for figure benches.
func benchOpts() experiments.Options {
	return experiments.Options{
		Scale:     0.02,
		Seed:      1,
		Workloads: []string{"black", "comm1"},
		Quiet:     true,
	}
}

// --- Micro-benchmarks: the structures on the per-activation hot path. ---

func BenchmarkTreeAccessUniform(b *testing.B) {
	tree, err := core.NewTree(core.Config{
		Rows: 1 << 16, Counters: 64, MaxLevels: 11,
		RefreshThreshold: 32768, Policy: core.DRCAT,
	})
	if err != nil {
		b.Fatal(err)
	}
	src := rng.NewXoshiro256(1)
	rows := make([]int, 4096)
	for i := range rows {
		rows[i] = rng.Intn(src, 1<<16)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.Access(rows[i&4095])
	}
}

func BenchmarkTreeAccessHammer(b *testing.B) {
	tree, err := core.NewTree(core.Config{
		Rows: 1 << 16, Counters: 64, MaxLevels: 11,
		RefreshThreshold: 32768, Policy: core.DRCAT,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.Access(31337)
	}
}

func BenchmarkSCAAccess(b *testing.B) {
	s, err := mitigation.NewSCA(16, 1<<16, 64, 32768)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.OnActivate(i&15, (i*2654435761)&(1<<16-1))
	}
}

func BenchmarkPRAAccess(b *testing.B) {
	p, err := mitigation.NewPRA(1<<16, 0.002, rng.NewXoshiro256(7))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.OnActivate(0, i&(1<<16-1))
	}
}

func BenchmarkWorkloadGenerator(b *testing.B) {
	wl, _ := trace.Lookup("comm1")
	gen, err := trace.NewSynthetic(wl, 16<<30, 64, 3)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gen.Next()
	}
}

func BenchmarkFullSystemSimulation(b *testing.B) {
	wl, _ := trace.Lookup("comm1")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(sim.Config{
			Cores: 2, RequestsPerCore: 50_000, Workload: wl,
			Scheme:    sim.SchemeSpec{Kind: mitigation.KindDRCAT, Counters: 64, MaxLevels: 11},
			Threshold: 1024, ThresholdScale: 0.03, IntervalNS: 2e6, Seed: uint64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Counts.Activations), "requests/op")
	}
}

// --- Runner engine: the sequential path vs the worker pool + cache. ---
// Comparing these two pairs is the repo's standing speedup measurement:
// identical grids, identical output, different wall-clock.

func BenchmarkFig8GridSequentialNoCache(b *testing.B) {
	o := benchOpts()
	o.Parallel = 1
	o.NoCache = true
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig8(o, 16384, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8GridParallelCached(b *testing.B) {
	o := benchOpts()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig8(o, 16384, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReproduceFigs89SequentialNoCache(b *testing.B) {
	o := benchOpts()
	o.Parallel = 1
	o.NoCache = true
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig8(io.Discard, o); err != nil {
			b.Fatal(err)
		}
		if _, err := experiments.Fig9(io.Discard, o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReproduceFigs89ParallelCached(b *testing.B) {
	o := benchOpts()
	for i := 0; i < b.N; i++ {
		o.Cache = runner.NewCache() // one shared cache per reproduction
		if _, err := experiments.Fig8(io.Discard, o); err != nil {
			b.Fatal(err)
		}
		if _, err := experiments.Fig9(io.Discard, o); err != nil {
			b.Fatal(err)
		}
	}
}

// --- One benchmark per table/figure. ---

func BenchmarkTable1SystemConfig(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.Table1(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2HardwareModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table2(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig1PRAUnsurvivability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig1(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig1LFSRMonteCarlo(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := reliability.MonteCarloLFSR(reliability.MonteCarloConfig{
			T: 16384, P: 0.005, Q0: 20, Intervals: 2, Trials: 10,
			Rotate: 1, SeedBase: uint64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig2SCAEnergySweep(b *testing.B) {
	o := benchOpts()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig2(io.Discard, o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3RowHistograms(b *testing.B) {
	o := benchOpts()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig3(io.Discard, o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8CMRPO(b *testing.B) {
	o := benchOpts()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig8(o, 16384, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9ETO(b *testing.B) {
	// Fig. 9 derives from the same paired runs as Fig. 8 at T=32K.
	o := benchOpts()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig8(o, 32768, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10CounterDepthSweep(b *testing.B) {
	o := benchOpts()
	o.Workloads = []string{"black"}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig10(o, 32768, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig11MappingAndCores(b *testing.B) {
	o := benchOpts()
	o.Workloads = []string{"black"}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig11(o, 16384, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig12ThresholdSweep(b *testing.B) {
	o := benchOpts()
	o.Workloads = []string{"black"}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig12(io.Discard, o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig13KernelAttacks(b *testing.B) {
	o := benchOpts()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig13(io.Discard, o); err != nil {
			b.Fatal(err)
		}
	}
}
