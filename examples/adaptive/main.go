// Adaptive: watch DRCAT track a moving hot spot. The tree is shaped by a
// first phase, the hot spot then jumps; DRCAT's weight registers age out
// the old region, merge its counters and split the new one — the §V-B
// mechanism that PRCAT (periodic reset) can only approximate by forgetting
// everything. The example also pushes the program's raw reference stream
// through the LLC substrate to show the memory system sees post-cache
// traffic.
package main

import (
	"fmt"
	"log"

	"catsim"
	"catsim/internal/cache"
	"catsim/internal/rng"
)

func main() {
	tree, err := catsim.NewTree(catsim.TreeConfig{
		Rows:             4096,
		Counters:         16,
		MaxLevels:        10,
		RefreshThreshold: 2048,
		Policy:           catsim.DRCAT,
	})
	if err != nil {
		log.Fatal(err)
	}

	// A small LLC in front of the bank: hot lines hit in cache, so the
	// memory-side stream the tree sees is the post-LLC miss traffic.
	llc, err := cache.New(cache.Config{SizeBytes: 64 * 1024, LineBytes: 64, Ways: 8})
	if err != nil {
		log.Fatal(err)
	}

	src := rng.NewXoshiro256(11)
	phase := func(name string, hotRow int, n int) {
		for i := 0; i < n; i++ {
			if rng.Intn(src, 10) < 3 {
				// Background traffic goes through the LLC; only misses
				// reach DRAM and the tree.
				row := rng.Intn(src, 4096)
				addr := int64(row)*4096 + int64(rng.Intn(src, 64))*64
				if hit, _, _ := llc.Access(addr, false); hit {
					continue
				}
				tree.Access(row)
				continue
			}
			// The hammering loop CLFLUSHes its line before each load (as
			// real rowhammer code must — a cached line never activates the
			// row), so every hot access reaches DRAM.
			tree.Access(hotRow)
		}
		s := tree.Stats()
		fmt.Printf("%s: hot row %d\n", name, hotRow)
		fmt.Printf("  leaves covering the hot row:\n")
		for _, l := range tree.Leaves() {
			if l.Lo <= hotRow && hotRow <= l.Hi {
				fmt.Printf("    rows [%4d,%4d] depth %d weight %d\n", l.Lo, l.Hi, l.Depth, l.Weight)
			}
		}
		fmt.Printf("  totals: %d splits, %d reconfigurations, %d rows refreshed\n\n",
			s.Splits, s.Reconfigs, s.RowsRefreshed)
	}

	phase("phase 1", 100, 200_000)
	tree.OnIntervalBoundary() // auto-refresh boundary: values reset, shape kept
	phase("phase 2 (hot spot moved)", 3900, 200_000)
	tree.OnIntervalBoundary()
	phase("phase 3 (moved again)", 2000, 200_000)

	fmt.Printf("LLC hit rate over the whole run: %.1f%%\n", llc.HitRate()*100)
	fmt.Println("DRCAT reconfigurations re-aimed the counters at each new hot region")
	fmt.Println("without ever forgetting the rest of the bank (cf. paper Fig. 7).")
}
