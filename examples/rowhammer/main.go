// Rowhammer: a double-sided hammering attack against one bank, comparing
// the deterministic CAT against probabilistic PRA. CAT guarantees the
// victim is refreshed before any aggressor reaches the threshold; PRA only
// makes failure unlikely — and with a weak LFSR PRNG, not even that (the
// paper's §III-A study, reproduced by internal/reliability).
package main

import (
	"fmt"
	"log"

	"catsim/internal/core"
	"catsim/internal/mitigation"
	"catsim/internal/reliability"
	"catsim/internal/rng"
)

const (
	rows      = 64 * 1024
	threshold = 32 * 1024
	victim    = 4001
)

func main() {
	// The classic double-sided attack: hammer both neighbours of the victim.
	aggressors := [2]int{victim - 1, victim + 1}
	stream := make([][2]int, 8*threshold)
	for i := range stream {
		stream[i] = [2]int{0, aggressors[i%2]}
	}

	fmt.Println("double-sided rowhammer, one bank, T =", threshold)
	fmt.Println()

	// Deterministic: DRCAT with 64 counters.
	cat, err := mitigation.NewCAT(1, core.Config{
		Rows: rows, Counters: 64, MaxLevels: 11,
		RefreshThreshold: threshold, Policy: core.DRCAT,
	})
	if err != nil {
		log.Fatal(err)
	}
	oracle := mitigation.NewOracle(1, rows, threshold)
	violations := oracle.Drive(cat, stream, 0)
	c := cat.Counts()
	fmt.Printf("DRCAT_64:  %8d activations, %4d refreshes (%6d rows), %d victim failures\n",
		c.Activations, c.RefreshEvents, c.RowsRefreshed, violations)

	// Probabilistic: PRA with the paper's p for this threshold.
	p := mitigation.PRAProbabilityForThreshold(threshold)
	pra, err := mitigation.NewPRA(rows, p, rng.NewXoshiro256(42))
	if err != nil {
		log.Fatal(err)
	}
	oracle2 := mitigation.NewOracle(1, rows, threshold)
	violations2 := oracle2.Drive(pra, stream, 0)
	c2 := pra.Counts()
	fmt.Printf("PRA_%.3f: %8d activations, %4d refreshes (%6d rows), %d victim failures\n",
		p, c2.Activations, c2.RefreshEvents, c2.RowsRefreshed, violations2)

	// The analytic failure bound behind PRA's safety (Eq. 1) and what a
	// cheap LFSR does to it.
	u, err := reliability.Unsurvivability(p, threshold, reliability.DefaultQ0(threshold), 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nPRA 5-year unsurvivability (ideal PRNG, Eq. 1): %.2e (Chipkill line: 1e-4)\n", u)

	weak, err := reliability.MonteCarloLFSR(reliability.MonteCarloConfig{
		T: threshold, P: p, Q0: reliability.DefaultQ0(threshold),
		Intervals: 5, Trials: 100, Rotate: 1, SeedBase: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("with a cheap two-tap LFSR PRNG: %.0f%% of seeds fail immediately\n",
		weak.FailProb*100)
	total, ratio := reliability.SyncAttackAccesses(threshold, p, rng.MaximalMask16, 0xBEEF)
	fmt.Printf("phase-aware attacker vs maximal LFSR: defeats PRA in %d accesses (%.3fx overhead)\n",
		total, ratio)
	fmt.Println("\nCAT needs no randomness: detection is deterministic by construction.")
}
