// Workloads: run the paper's workload models through the full-system
// simulator and compare mitigation schemes head to head — a miniature of
// the paper's Fig. 8/9 for a handful of traces.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"catsim"
	"catsim/internal/dram"
	"catsim/internal/mitigation"
	"catsim/internal/sim"
	"catsim/internal/trace"
)

func main() {
	var (
		threshold uint32 = 16384 // the paper's T=16K configuration
		scale            = 0.10  // a tenth of a refresh interval per run
	)
	schemes := []sim.SchemeSpec{
		{Kind: mitigation.KindPRA},
		{Kind: mitigation.KindSCA, Counters: 64},
		{Kind: mitigation.KindSCA, Counters: 128},
		{Kind: mitigation.KindPRCAT, Counters: 64, MaxLevels: 11},
		{Kind: mitigation.KindDRCAT, Counters: 64, MaxLevels: 11},
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "workload\tscheme\tCMRPO\tETO\trows refreshed\tread lat (ns)")
	for _, name := range []string{"black", "libq", "comm1", "face"} {
		wl, err := trace.Lookup(name)
		if err != nil {
			log.Fatal(err)
		}
		for _, spec := range schemes {
			if spec.Kind == mitigation.KindPRA {
				spec.PRAProb = mitigation.PRAProbabilityForThreshold(threshold)
			}
			cfg := catsim.SimConfig{
				Cores:           2,
				RequestsPerCore: int(204.8e6 / float64(wl.GapMean) * scale),
				Workload:        wl,
				Scheme:          spec,
				Threshold:       uint32(float64(threshold) * scale),

				ThresholdScale: scale,
				IntervalNS:     dram.RefreshIntervalNS() * scale,
				Seed:           1,
			}
			pair, err := catsim.RunPair(cfg)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Fprintf(tw, "%s\t%s\t%.2f%%\t%.3f%%\t%d\t%.1f\n",
				name, spec.Label(threshold), pair.Scheme.CMRPO*100, pair.ETO*100,
				pair.Scheme.Counts.RowsRefreshed, pair.Scheme.AvgReadLatencyNS)
		}
		fmt.Fprintln(tw, "\t\t\t\t\t")
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("CMRPO = crosstalk-mitigation refresh power / regular refresh power (2.5 mW/bank)")
	fmt.Println("ETO   = slowdown vs the same run without mitigation")
}
