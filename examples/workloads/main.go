// Workloads: run the paper's workload models through the full-system
// simulator and compare mitigation schemes head to head — a miniature of
// the paper's Fig. 8/9 for a handful of traces, extended with the modern
// trackers (CoMeT, ABACuS, DSAC).
package main

import (
	"fmt"
	"io"
	"log"
	"os"
	"text/tabwriter"

	"catsim"
	"catsim/internal/dram"
	"catsim/internal/mitigation"
	"catsim/internal/sim"
	"catsim/internal/trace"
)

// defaultSchemes is the head-to-head lineup: the paper's Fig. 8/9 schemes
// plus the modern trackers.
func defaultSchemes() []sim.SchemeSpec {
	return []sim.SchemeSpec{
		{Kind: mitigation.KindPRA},
		{Kind: mitigation.KindSCA, Counters: 64},
		{Kind: mitigation.KindSCA, Counters: 128},
		{Kind: mitigation.KindPRCAT, Counters: 64, MaxLevels: 11},
		{Kind: mitigation.KindDRCAT, Counters: 64, MaxLevels: 11},
		{Kind: mitigation.KindCoMeT, Counters: 2048, Ways: 4},
		{Kind: mitigation.KindABACuS, Counters: 1024},
		{Kind: mitigation.KindStochastic, Counters: 64},
	}
}

// run compares the schemes over the named workloads at the given fraction
// of a refresh interval, writing the comparison table to w.
func run(w io.Writer, workloads []string, schemes []sim.SchemeSpec, scale float64) error {
	const threshold uint32 = 16384 // the paper's T=16K configuration
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "workload\tscheme\tCMRPO\tETO\trows refreshed\tread lat (ns)")
	for _, name := range workloads {
		wl, err := trace.Lookup(name)
		if err != nil {
			return err
		}
		for _, spec := range schemes {
			if spec.Kind == mitigation.KindPRA {
				spec.PRAProb = mitigation.PRAProbabilityForThreshold(threshold)
			}
			cfg := catsim.SimConfig{
				Cores:           2,
				RequestsPerCore: int(204.8e6 / float64(wl.GapMean) * scale),
				Workload:        wl,
				Scheme:          spec,
				Threshold:       uint32(float64(threshold) * scale),

				ThresholdScale: scale,
				IntervalNS:     dram.RefreshIntervalNS() * scale,
				Seed:           1,
			}
			pair, err := catsim.RunPair(cfg)
			if err != nil {
				return err
			}
			fmt.Fprintf(tw, "%s\t%s\t%.2f%%\t%.3f%%\t%d\t%.1f\n",
				name, spec.Label(threshold), pair.Scheme.CMRPO*100, pair.ETO*100,
				pair.Scheme.Counts.RowsRefreshed, pair.Scheme.AvgReadLatencyNS)
		}
		fmt.Fprintln(tw, "\t\t\t\t\t")
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(w, "CMRPO = crosstalk-mitigation refresh power / regular refresh power (2.5 mW/bank)")
	fmt.Fprintln(w, "ETO   = slowdown vs the same run without mitigation")
	return nil
}

func main() {
	if err := run(os.Stdout, []string{"black", "libq", "comm1", "face"}, defaultSchemes(), 0.10); err != nil {
		log.Fatal(err)
	}
}
