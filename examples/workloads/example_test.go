package main

import (
	"fmt"
	"strings"

	"catsim/internal/mitigation"
	"catsim/internal/sim"
)

// Example runs the scheme comparison end to end at a tiny scale (one
// workload, two schemes, 2% of a refresh interval) so CI exercises this
// example package. The numeric cells depend on the timing model, so the
// asserted output is the deterministic shape of the table: which schemes
// ran, over which workload.
func Example() {
	var b strings.Builder
	err := run(&b, []string{"black"}, []sim.SchemeSpec{
		{Kind: mitigation.KindDRCAT, Counters: 64, MaxLevels: 11},
		{Kind: mitigation.KindCoMeT, Counters: 2048, Ways: 4},
		{Kind: mitigation.KindABACuS, Counters: 1024},
	}, 0.02)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	for _, line := range strings.Split(b.String(), "\n") {
		f := strings.Fields(line)
		if len(f) >= 2 && f[0] == "black" {
			fmt.Println(f[0], f[1])
		}
	}
	// Output:
	// black DRCAT_64
	// black CoMeT_2048
	// black ABACuS_1024
}
