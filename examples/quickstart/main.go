// Quickstart: build one Counter-based Adaptive Tree, hammer a row, and
// watch the tree split toward the aggressor and fire a deterministic victim
// refresh at exactly the threshold.
package main

import (
	"fmt"
	"log"

	"catsim"
)

func main() {
	// One bank with 64K rows, 64 counters, trees up to 11 levels, and the
	// paper's refresh threshold of 32K activations (DDR3-era crosstalk).
	tree, err := catsim.NewTree(catsim.TreeConfig{
		Rows:             64 * 1024,
		Counters:         64,
		MaxLevels:        11,
		RefreshThreshold: 32 * 1024,
		Policy:           catsim.DRCAT,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("initial tree: uniform pre-split (λ = log2 M = 6 levels)")
	printShape(tree)

	// A rowhammer-style aggressor at row 31337.
	const aggressor = 31337
	accesses := 0
	for {
		accesses++
		lo, hi, refresh := tree.Access(aggressor)
		if refresh {
			fmt.Printf("\nafter %d activations of row %d:\n", accesses, aggressor)
			fmt.Printf("  -> refresh command for rows [%d, %d] (%d rows)\n", lo, hi, hi-lo+1)
			fmt.Printf("     victims %d and %d are covered before crosstalk can flip them\n",
				aggressor-1, aggressor+1)
			break
		}
	}

	fmt.Println("\ntree after the attack: counters concentrated on the hot region")
	printShape(tree)

	s := tree.Stats()
	fmt.Printf("\nstats: %d accesses, %d splits, %d refresh command(s), %d rows refreshed\n",
		s.Accesses, s.Splits, s.RefreshEvents, s.RowsRefreshed)
}

// printShape summarises the leaves by depth and shows the finest ones.
func printShape(t *catsim.Tree) {
	depthCount := map[int]int{}
	finest := -1
	for _, l := range t.Leaves() {
		depthCount[l.Depth]++
		if l.Depth > finest {
			finest = l.Depth
		}
	}
	for d := 0; d <= finest; d++ {
		if n := depthCount[d]; n > 0 {
			fmt.Printf("  depth %2d: %2d counters (each covering %5d rows)\n",
				d, n, t.Config().Rows>>uint(d))
		}
	}
}
